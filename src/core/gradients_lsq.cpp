#include "core/gradients_lsq.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/team.hpp"
#include "parallel/workshare.hpp"

namespace fun3d {
namespace {

/// Inverts a symmetric 3x3 given as (xx, xy, xz, yy, yz, zz).
bool sym3_invert(const double* s, double* out) {
  const double a = s[0], b = s[1], c = s[2], d = s[3], e = s[4], f = s[5];
  const double co0 = d * f - e * e;   // cofactors
  const double co1 = c * e - b * f;
  const double co2 = b * e - c * d;
  const double det = a * co0 + b * co1 + c * co2;
  if (std::fabs(det) < 1e-300) return false;
  const double inv = 1.0 / det;
  out[0] = co0 * inv;
  out[1] = co1 * inv;
  out[2] = co2 * inv;
  out[3] = (a * f - c * c) * inv;
  out[4] = (b * c - a * e) * inv;
  out[5] = (a * d - b * b) * inv;
  return true;
}

/// Accumulates dq-weighted edge directions for all states into out_a/out_b
/// (either may be null): rhs_s += dx * (q_s(other) - q_s(self)).
inline void edge_lsq(const EdgeArrays& e, const FlowFields& f, std::size_t ei,
                     double* out_a, double* out_b) {
  const std::size_t a = static_cast<std::size_t>(e.a[ei]);
  const std::size_t b = static_cast<std::size_t>(e.b[ei]);
  double dx[3];
  for (int d = 0; d < 3; ++d)
    dx[d] = f.coords[b * 3 + static_cast<std::size_t>(d)] -
            f.coords[a * 3 + static_cast<std::size_t>(d)];
  for (int s = 0; s < kNs; ++s) {
    const double dq = f.q[b * kNs + static_cast<std::size_t>(s)] -
                      f.q[a * kNs + static_cast<std::size_t>(s)];
    for (int d = 0; d < 3; ++d) {
      const double c = dx[d] * dq;
      if (out_a != nullptr) out_a[s * 3 + d] += c;
      if (out_b != nullptr) out_b[s * 3 + d] += c;  // (-dx)*(-dq) = dx*dq
    }
  }
}

}  // namespace

LsqGradientOperator::LsqGradientOperator(const TetMesh& m) {
  const std::size_t nv = static_cast<std::size_t>(m.num_vertices);
  AVec<double> normal(nv * 6, 0.0);  // A^T A per vertex
  for (std::size_t e = 0; e < m.edges.size(); ++e) {
    const std::size_t a = static_cast<std::size_t>(m.edges[e].first);
    const std::size_t b = static_cast<std::size_t>(m.edges[e].second);
    const double dx = m.x[b] - m.x[a];
    const double dy = m.y[b] - m.y[a];
    const double dz = m.z[b] - m.z[a];
    const double terms[6] = {dx * dx, dx * dy, dx * dz,
                             dy * dy, dy * dz, dz * dz};
    for (int i = 0; i < 6; ++i) {
      normal[a * 6 + static_cast<std::size_t>(i)] += terms[i];
      normal[b * 6 + static_cast<std::size_t>(i)] += terms[i];
    }
  }
  inv_.resize(nv * 6);
  for (std::size_t v = 0; v < nv; ++v) {
    if (!sym3_invert(normal.data() + v * 6, inv_.data() + v * 6))
      throw std::runtime_error(
          "LsqGradientOperator: degenerate vertex stencil");
  }
}

void LsqGradientOperator::apply(const EdgeArrays& edges,
                                const EdgeLoopPlan& plan,
                                FlowFields& fields) const {
  const std::size_t nv = static_cast<std::size_t>(fields.nv);
  // Phase 1: accumulate rhs_s = sum_e dx (q_s(u) - q_s(v)) into grad.
  std::fill(fields.grad.begin(), fields.grad.end(), 0.0);
  double* g = fields.grad.data();

  if (plan.nthreads <= 1) {
    for (std::size_t ei = 0; ei < edges.n; ++ei)
      edge_lsq(edges, fields, ei,
               g + static_cast<std::size_t>(edges.a[ei]) * kGradStride,
               g + static_cast<std::size_t>(edges.b[ei]) * kGradStride);
  } else {
    switch (plan.strategy) {
      case EdgeStrategy::kAtomics: {
        run_team(plan.nthreads, [&](idx_t t) {
          double local[kGradStride];
          for (idx_t ei = plan.edge_begin[static_cast<std::size_t>(t)];
               ei < plan.edge_begin[static_cast<std::size_t>(t) + 1]; ++ei) {
            std::fill(local, local + kGradStride, 0.0);
            edge_lsq(edges, fields, static_cast<std::size_t>(ei), local,
                     nullptr);
            double* ga = g + static_cast<std::size_t>(
                                 edges.a[static_cast<std::size_t>(ei)]) *
                                 kGradStride;
            double* gb = g + static_cast<std::size_t>(
                                 edges.b[static_cast<std::size_t>(ei)]) *
                                 kGradStride;
            for (int i = 0; i < kGradStride; ++i) {
#pragma omp atomic
              ga[i] += local[i];
#pragma omp atomic
              gb[i] += local[i];
            }
          }
        });
        break;
      }
      case EdgeStrategy::kReplicationNatural:
      case EdgeStrategy::kReplicationPartitioned: {
        run_team(plan.nthreads, [&](idx_t t) {
          const auto* owner = plan.vertex_owner.data();
          for (idx_t eid : plan.edges_of(t)) {
            const std::size_t ei = static_cast<std::size_t>(eid);
            const idx_t va = edges.a[ei], vb = edges.b[ei];
            edge_lsq(edges, fields, ei,
                     owner[va] == t
                         ? g + static_cast<std::size_t>(va) * kGradStride
                         : nullptr,
                     owner[vb] == t
                         ? g + static_cast<std::size_t>(vb) * kGradStride
                         : nullptr);
          }
        });
        break;
      }
      case EdgeStrategy::kColoring: {
        // `omp for` worksharing is team-size-agnostic; run_team_workshare
        // only adds shortfall observability.
        run_team_workshare(plan.nthreads, [&] {
          for (const auto& cls : plan.color_classes) {
#pragma omp for schedule(static)
            for (std::int64_t k = 0;
                 k < static_cast<std::int64_t>(cls.size()); ++k) {
              const std::size_t ei =
                  static_cast<std::size_t>(cls[static_cast<std::size_t>(k)]);
              edge_lsq(edges, fields, ei,
                       g + static_cast<std::size_t>(edges.a[ei]) * kGradStride,
                       g + static_cast<std::size_t>(edges.b[ei]) * kGradStride);
            }
          }
        });
        break;
      }
    }
  }

  // Phase 2: grad_s(v) = (A^T A)^{-1} rhs_s(v) — independent per vertex,
  // so the loop rides parallel_ranges for shortfall counting and tracing.
  parallel_ranges(
      static_cast<idx_t>(nv), plan.nthreads,
      [&](idx_t, idx_t b, idx_t e) {
        for (idx_t v = b; v < e; ++v) {
          const double* n = inv_.data() + static_cast<std::size_t>(v) * 6;
          for (int s = 0; s < kNs; ++s) {
            double* r = g + static_cast<std::size_t>(v) * kGradStride +
                        static_cast<std::size_t>(s * 3);
            const double x = r[0], y = r[1], z = r[2];
            r[0] = n[0] * x + n[1] * y + n[2] * z;
            r[1] = n[1] * x + n[3] * y + n[4] * z;
            r[2] = n[2] * x + n[4] * y + n[5] * z;
          }
        }
      },
      "gradients_lsq");
}

double lsq_gradient_flops_per_edge() {
  // 3 deltas + per state: 1 delta + 3 mul + 6 add, plus the per-vertex
  // 15-flop solve amortized over ~7 edges.
  return 3.0 + kNs * 10.0 + kNs * 15.0 / 7.0;
}

}  // namespace fun3d
