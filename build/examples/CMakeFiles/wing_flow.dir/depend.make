# Empty dependencies file for wing_flow.
# This may be replaced when dependencies are built.
