file(REMOVE_RECURSE
  "CMakeFiles/wing_flow.dir/wing_flow.cpp.o"
  "CMakeFiles/wing_flow.dir/wing_flow.cpp.o.d"
  "wing_flow"
  "wing_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wing_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
