# Empty dependencies file for test_bcsr.
# This may be replaced when dependencies are built.
