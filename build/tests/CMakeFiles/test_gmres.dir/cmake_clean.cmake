file(REMOVE_RECURSE
  "CMakeFiles/test_gmres.dir/test_gmres.cpp.o"
  "CMakeFiles/test_gmres.dir/test_gmres.cpp.o.d"
  "test_gmres"
  "test_gmres.pdb"
  "test_gmres[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gmres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
