# Empty compiler generated dependencies file for test_gmres.
# This may be replaced when dependencies are built.
