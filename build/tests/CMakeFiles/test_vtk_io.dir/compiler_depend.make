# Empty compiler generated dependencies file for test_vtk_io.
# This may be replaced when dependencies are built.
