file(REMOVE_RECURSE
  "CMakeFiles/test_vtk_io.dir/test_vtk_io.cpp.o"
  "CMakeFiles/test_vtk_io.dir/test_vtk_io.cpp.o.d"
  "test_vtk_io"
  "test_vtk_io.pdb"
  "test_vtk_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vtk_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
