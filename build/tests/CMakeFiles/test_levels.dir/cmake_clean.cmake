file(REMOVE_RECURSE
  "CMakeFiles/test_levels.dir/test_levels.cpp.o"
  "CMakeFiles/test_levels.dir/test_levels.cpp.o.d"
  "test_levels"
  "test_levels.pdb"
  "test_levels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
