file(REMOVE_RECURSE
  "CMakeFiles/test_physics_properties.dir/test_physics_properties.cpp.o"
  "CMakeFiles/test_physics_properties.dir/test_physics_properties.cpp.o.d"
  "test_physics_properties"
  "test_physics_properties.pdb"
  "test_physics_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physics_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
