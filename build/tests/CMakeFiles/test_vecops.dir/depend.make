# Empty dependencies file for test_vecops.
# This may be replaced when dependencies are built.
