file(REMOVE_RECURSE
  "CMakeFiles/test_vecops.dir/test_vecops.cpp.o"
  "CMakeFiles/test_vecops.dir/test_vecops.cpp.o.d"
  "test_vecops"
  "test_vecops.pdb"
  "test_vecops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vecops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
