# Empty compiler generated dependencies file for test_ilu.
# This may be replaced when dependencies are built.
