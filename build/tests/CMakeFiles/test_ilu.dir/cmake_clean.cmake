file(REMOVE_RECURSE
  "CMakeFiles/test_ilu.dir/test_ilu.cpp.o"
  "CMakeFiles/test_ilu.dir/test_ilu.cpp.o.d"
  "test_ilu"
  "test_ilu.pdb"
  "test_ilu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ilu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
