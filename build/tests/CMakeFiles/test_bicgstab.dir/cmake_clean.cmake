file(REMOVE_RECURSE
  "CMakeFiles/test_bicgstab.dir/test_bicgstab.cpp.o"
  "CMakeFiles/test_bicgstab.dir/test_bicgstab.cpp.o.d"
  "test_bicgstab"
  "test_bicgstab.pdb"
  "test_bicgstab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bicgstab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
