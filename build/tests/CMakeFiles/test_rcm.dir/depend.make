# Empty dependencies file for test_rcm.
# This may be replaced when dependencies are built.
