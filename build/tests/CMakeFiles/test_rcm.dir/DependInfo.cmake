
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rcm.cpp" "tests/CMakeFiles/test_rcm.dir/test_rcm.cpp.o" "gcc" "tests/CMakeFiles/test_rcm.dir/test_rcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fun3d_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
