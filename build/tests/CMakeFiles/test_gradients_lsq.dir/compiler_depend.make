# Empty compiler generated dependencies file for test_gradients_lsq.
# This may be replaced when dependencies are built.
