file(REMOVE_RECURSE
  "CMakeFiles/test_gradients_lsq.dir/test_gradients_lsq.cpp.o"
  "CMakeFiles/test_gradients_lsq.dir/test_gradients_lsq.cpp.o.d"
  "test_gradients_lsq"
  "test_gradients_lsq.pdb"
  "test_gradients_lsq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gradients_lsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
