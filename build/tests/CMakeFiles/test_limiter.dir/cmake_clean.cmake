file(REMOVE_RECURSE
  "CMakeFiles/test_limiter.dir/test_limiter.cpp.o"
  "CMakeFiles/test_limiter.dir/test_limiter.cpp.o.d"
  "test_limiter"
  "test_limiter.pdb"
  "test_limiter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_limiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
