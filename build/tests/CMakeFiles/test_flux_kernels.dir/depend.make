# Empty dependencies file for test_flux_kernels.
# This may be replaced when dependencies are built.
