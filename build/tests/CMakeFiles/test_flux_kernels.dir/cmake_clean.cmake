file(REMOVE_RECURSE
  "CMakeFiles/test_flux_kernels.dir/test_flux_kernels.cpp.o"
  "CMakeFiles/test_flux_kernels.dir/test_flux_kernels.cpp.o.d"
  "test_flux_kernels"
  "test_flux_kernels.pdb"
  "test_flux_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flux_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
