# Empty dependencies file for test_edge_partition.
# This may be replaced when dependencies are built.
