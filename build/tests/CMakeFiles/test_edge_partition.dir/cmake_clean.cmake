file(REMOVE_RECURSE
  "CMakeFiles/test_edge_partition.dir/test_edge_partition.cpp.o"
  "CMakeFiles/test_edge_partition.dir/test_edge_partition.cpp.o.d"
  "test_edge_partition"
  "test_edge_partition.pdb"
  "test_edge_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
