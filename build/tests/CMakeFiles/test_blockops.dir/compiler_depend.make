# Empty compiler generated dependencies file for test_blockops.
# This may be replaced when dependencies are built.
