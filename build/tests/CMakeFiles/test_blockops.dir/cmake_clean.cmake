file(REMOVE_RECURSE
  "CMakeFiles/test_blockops.dir/test_blockops.cpp.o"
  "CMakeFiles/test_blockops.dir/test_blockops.cpp.o.d"
  "test_blockops"
  "test_blockops.pdb"
  "test_blockops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blockops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
