# Empty compiler generated dependencies file for fun3d_util.
# This may be replaced when dependencies are built.
