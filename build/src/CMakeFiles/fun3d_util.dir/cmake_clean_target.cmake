file(REMOVE_RECURSE
  "libfun3d_util.a"
)
