file(REMOVE_RECURSE
  "CMakeFiles/fun3d_util.dir/util/cli.cpp.o"
  "CMakeFiles/fun3d_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/fun3d_util.dir/util/stats.cpp.o"
  "CMakeFiles/fun3d_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/fun3d_util.dir/util/table.cpp.o"
  "CMakeFiles/fun3d_util.dir/util/table.cpp.o.d"
  "CMakeFiles/fun3d_util.dir/util/timer.cpp.o"
  "CMakeFiles/fun3d_util.dir/util/timer.cpp.o.d"
  "libfun3d_util.a"
  "libfun3d_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fun3d_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
