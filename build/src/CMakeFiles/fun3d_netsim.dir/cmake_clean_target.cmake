file(REMOVE_RECURSE
  "libfun3d_netsim.a"
)
