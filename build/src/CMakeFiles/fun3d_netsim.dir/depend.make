# Empty dependencies file for fun3d_netsim.
# This may be replaced when dependencies are built.
