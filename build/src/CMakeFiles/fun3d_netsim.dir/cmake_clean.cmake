file(REMOVE_RECURSE
  "CMakeFiles/fun3d_netsim.dir/netsim/cluster_sim.cpp.o"
  "CMakeFiles/fun3d_netsim.dir/netsim/cluster_sim.cpp.o.d"
  "CMakeFiles/fun3d_netsim.dir/netsim/network_model.cpp.o"
  "CMakeFiles/fun3d_netsim.dir/netsim/network_model.cpp.o.d"
  "libfun3d_netsim.a"
  "libfun3d_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fun3d_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
