# Empty compiler generated dependencies file for fun3d_mesh.
# This may be replaced when dependencies are built.
