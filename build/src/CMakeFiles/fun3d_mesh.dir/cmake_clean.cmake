file(REMOVE_RECURSE
  "CMakeFiles/fun3d_mesh.dir/mesh/decompose.cpp.o"
  "CMakeFiles/fun3d_mesh.dir/mesh/decompose.cpp.o.d"
  "CMakeFiles/fun3d_mesh.dir/mesh/dual.cpp.o"
  "CMakeFiles/fun3d_mesh.dir/mesh/dual.cpp.o.d"
  "CMakeFiles/fun3d_mesh.dir/mesh/generate.cpp.o"
  "CMakeFiles/fun3d_mesh.dir/mesh/generate.cpp.o.d"
  "CMakeFiles/fun3d_mesh.dir/mesh/mesh.cpp.o"
  "CMakeFiles/fun3d_mesh.dir/mesh/mesh.cpp.o.d"
  "CMakeFiles/fun3d_mesh.dir/mesh/reorder.cpp.o"
  "CMakeFiles/fun3d_mesh.dir/mesh/reorder.cpp.o.d"
  "CMakeFiles/fun3d_mesh.dir/mesh/stats.cpp.o"
  "CMakeFiles/fun3d_mesh.dir/mesh/stats.cpp.o.d"
  "libfun3d_mesh.a"
  "libfun3d_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fun3d_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
