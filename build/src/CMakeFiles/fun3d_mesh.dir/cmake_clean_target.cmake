file(REMOVE_RECURSE
  "libfun3d_mesh.a"
)
