
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/decompose.cpp" "src/CMakeFiles/fun3d_mesh.dir/mesh/decompose.cpp.o" "gcc" "src/CMakeFiles/fun3d_mesh.dir/mesh/decompose.cpp.o.d"
  "/root/repo/src/mesh/dual.cpp" "src/CMakeFiles/fun3d_mesh.dir/mesh/dual.cpp.o" "gcc" "src/CMakeFiles/fun3d_mesh.dir/mesh/dual.cpp.o.d"
  "/root/repo/src/mesh/generate.cpp" "src/CMakeFiles/fun3d_mesh.dir/mesh/generate.cpp.o" "gcc" "src/CMakeFiles/fun3d_mesh.dir/mesh/generate.cpp.o.d"
  "/root/repo/src/mesh/mesh.cpp" "src/CMakeFiles/fun3d_mesh.dir/mesh/mesh.cpp.o" "gcc" "src/CMakeFiles/fun3d_mesh.dir/mesh/mesh.cpp.o.d"
  "/root/repo/src/mesh/reorder.cpp" "src/CMakeFiles/fun3d_mesh.dir/mesh/reorder.cpp.o" "gcc" "src/CMakeFiles/fun3d_mesh.dir/mesh/reorder.cpp.o.d"
  "/root/repo/src/mesh/stats.cpp" "src/CMakeFiles/fun3d_mesh.dir/mesh/stats.cpp.o" "gcc" "src/CMakeFiles/fun3d_mesh.dir/mesh/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fun3d_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
