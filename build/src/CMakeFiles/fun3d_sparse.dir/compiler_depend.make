# Empty compiler generated dependencies file for fun3d_sparse.
# This may be replaced when dependencies are built.
