
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/bcsr.cpp" "src/CMakeFiles/fun3d_sparse.dir/sparse/bcsr.cpp.o" "gcc" "src/CMakeFiles/fun3d_sparse.dir/sparse/bcsr.cpp.o.d"
  "/root/repo/src/sparse/blockops.cpp" "src/CMakeFiles/fun3d_sparse.dir/sparse/blockops.cpp.o" "gcc" "src/CMakeFiles/fun3d_sparse.dir/sparse/blockops.cpp.o.d"
  "/root/repo/src/sparse/ilu.cpp" "src/CMakeFiles/fun3d_sparse.dir/sparse/ilu.cpp.o" "gcc" "src/CMakeFiles/fun3d_sparse.dir/sparse/ilu.cpp.o.d"
  "/root/repo/src/sparse/spmv.cpp" "src/CMakeFiles/fun3d_sparse.dir/sparse/spmv.cpp.o" "gcc" "src/CMakeFiles/fun3d_sparse.dir/sparse/spmv.cpp.o.d"
  "/root/repo/src/sparse/trsv.cpp" "src/CMakeFiles/fun3d_sparse.dir/sparse/trsv.cpp.o" "gcc" "src/CMakeFiles/fun3d_sparse.dir/sparse/trsv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fun3d_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
