file(REMOVE_RECURSE
  "libfun3d_sparse.a"
)
