file(REMOVE_RECURSE
  "CMakeFiles/fun3d_sparse.dir/sparse/bcsr.cpp.o"
  "CMakeFiles/fun3d_sparse.dir/sparse/bcsr.cpp.o.d"
  "CMakeFiles/fun3d_sparse.dir/sparse/blockops.cpp.o"
  "CMakeFiles/fun3d_sparse.dir/sparse/blockops.cpp.o.d"
  "CMakeFiles/fun3d_sparse.dir/sparse/ilu.cpp.o"
  "CMakeFiles/fun3d_sparse.dir/sparse/ilu.cpp.o.d"
  "CMakeFiles/fun3d_sparse.dir/sparse/spmv.cpp.o"
  "CMakeFiles/fun3d_sparse.dir/sparse/spmv.cpp.o.d"
  "CMakeFiles/fun3d_sparse.dir/sparse/trsv.cpp.o"
  "CMakeFiles/fun3d_sparse.dir/sparse/trsv.cpp.o.d"
  "libfun3d_sparse.a"
  "libfun3d_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fun3d_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
