file(REMOVE_RECURSE
  "CMakeFiles/fun3d_graph.dir/graph/coloring.cpp.o"
  "CMakeFiles/fun3d_graph.dir/graph/coloring.cpp.o.d"
  "CMakeFiles/fun3d_graph.dir/graph/csr.cpp.o"
  "CMakeFiles/fun3d_graph.dir/graph/csr.cpp.o.d"
  "CMakeFiles/fun3d_graph.dir/graph/levels.cpp.o"
  "CMakeFiles/fun3d_graph.dir/graph/levels.cpp.o.d"
  "CMakeFiles/fun3d_graph.dir/graph/partition.cpp.o"
  "CMakeFiles/fun3d_graph.dir/graph/partition.cpp.o.d"
  "CMakeFiles/fun3d_graph.dir/graph/rcm.cpp.o"
  "CMakeFiles/fun3d_graph.dir/graph/rcm.cpp.o.d"
  "CMakeFiles/fun3d_graph.dir/graph/sparsify.cpp.o"
  "CMakeFiles/fun3d_graph.dir/graph/sparsify.cpp.o.d"
  "libfun3d_graph.a"
  "libfun3d_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fun3d_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
