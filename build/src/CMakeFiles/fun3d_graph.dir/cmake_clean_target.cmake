file(REMOVE_RECURSE
  "libfun3d_graph.a"
)
