# Empty dependencies file for fun3d_graph.
# This may be replaced when dependencies are built.
