
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/coloring.cpp" "src/CMakeFiles/fun3d_graph.dir/graph/coloring.cpp.o" "gcc" "src/CMakeFiles/fun3d_graph.dir/graph/coloring.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/fun3d_graph.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/fun3d_graph.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/levels.cpp" "src/CMakeFiles/fun3d_graph.dir/graph/levels.cpp.o" "gcc" "src/CMakeFiles/fun3d_graph.dir/graph/levels.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/CMakeFiles/fun3d_graph.dir/graph/partition.cpp.o" "gcc" "src/CMakeFiles/fun3d_graph.dir/graph/partition.cpp.o.d"
  "/root/repo/src/graph/rcm.cpp" "src/CMakeFiles/fun3d_graph.dir/graph/rcm.cpp.o" "gcc" "src/CMakeFiles/fun3d_graph.dir/graph/rcm.cpp.o.d"
  "/root/repo/src/graph/sparsify.cpp" "src/CMakeFiles/fun3d_graph.dir/graph/sparsify.cpp.o" "gcc" "src/CMakeFiles/fun3d_graph.dir/graph/sparsify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fun3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
