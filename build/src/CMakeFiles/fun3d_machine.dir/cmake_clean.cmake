file(REMOVE_RECURSE
  "CMakeFiles/fun3d_machine.dir/machine/cache_sim.cpp.o"
  "CMakeFiles/fun3d_machine.dir/machine/cache_sim.cpp.o.d"
  "CMakeFiles/fun3d_machine.dir/machine/calibrate.cpp.o"
  "CMakeFiles/fun3d_machine.dir/machine/calibrate.cpp.o.d"
  "CMakeFiles/fun3d_machine.dir/machine/kernel_model.cpp.o"
  "CMakeFiles/fun3d_machine.dir/machine/kernel_model.cpp.o.d"
  "CMakeFiles/fun3d_machine.dir/machine/machine_model.cpp.o"
  "CMakeFiles/fun3d_machine.dir/machine/machine_model.cpp.o.d"
  "libfun3d_machine.a"
  "libfun3d_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fun3d_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
