
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cache_sim.cpp" "src/CMakeFiles/fun3d_machine.dir/machine/cache_sim.cpp.o" "gcc" "src/CMakeFiles/fun3d_machine.dir/machine/cache_sim.cpp.o.d"
  "/root/repo/src/machine/calibrate.cpp" "src/CMakeFiles/fun3d_machine.dir/machine/calibrate.cpp.o" "gcc" "src/CMakeFiles/fun3d_machine.dir/machine/calibrate.cpp.o.d"
  "/root/repo/src/machine/kernel_model.cpp" "src/CMakeFiles/fun3d_machine.dir/machine/kernel_model.cpp.o" "gcc" "src/CMakeFiles/fun3d_machine.dir/machine/kernel_model.cpp.o.d"
  "/root/repo/src/machine/machine_model.cpp" "src/CMakeFiles/fun3d_machine.dir/machine/machine_model.cpp.o" "gcc" "src/CMakeFiles/fun3d_machine.dir/machine/machine_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fun3d_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
