# Empty compiler generated dependencies file for fun3d_machine.
# This may be replaced when dependencies are built.
