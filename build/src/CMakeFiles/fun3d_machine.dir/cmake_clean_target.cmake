file(REMOVE_RECURSE
  "libfun3d_machine.a"
)
