# Empty compiler generated dependencies file for fun3d_core.
# This may be replaced when dependencies are built.
