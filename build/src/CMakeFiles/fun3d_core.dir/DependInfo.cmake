
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bicgstab.cpp" "src/CMakeFiles/fun3d_core.dir/core/bicgstab.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/bicgstab.cpp.o.d"
  "/root/repo/src/core/boundary.cpp" "src/CMakeFiles/fun3d_core.dir/core/boundary.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/boundary.cpp.o.d"
  "/root/repo/src/core/fields.cpp" "src/CMakeFiles/fun3d_core.dir/core/fields.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/fields.cpp.o.d"
  "/root/repo/src/core/flux_kernels.cpp" "src/CMakeFiles/fun3d_core.dir/core/flux_kernels.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/flux_kernels.cpp.o.d"
  "/root/repo/src/core/gmres.cpp" "src/CMakeFiles/fun3d_core.dir/core/gmres.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/gmres.cpp.o.d"
  "/root/repo/src/core/gradients.cpp" "src/CMakeFiles/fun3d_core.dir/core/gradients.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/gradients.cpp.o.d"
  "/root/repo/src/core/gradients_lsq.cpp" "src/CMakeFiles/fun3d_core.dir/core/gradients_lsq.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/gradients_lsq.cpp.o.d"
  "/root/repo/src/core/jacobian.cpp" "src/CMakeFiles/fun3d_core.dir/core/jacobian.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/jacobian.cpp.o.d"
  "/root/repo/src/core/limiter.cpp" "src/CMakeFiles/fun3d_core.dir/core/limiter.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/limiter.cpp.o.d"
  "/root/repo/src/core/newton.cpp" "src/CMakeFiles/fun3d_core.dir/core/newton.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/newton.cpp.o.d"
  "/root/repo/src/core/physics.cpp" "src/CMakeFiles/fun3d_core.dir/core/physics.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/physics.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/CMakeFiles/fun3d_core.dir/core/profile.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/profile.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/CMakeFiles/fun3d_core.dir/core/solver.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/solver.cpp.o.d"
  "/root/repo/src/core/vecops.cpp" "src/CMakeFiles/fun3d_core.dir/core/vecops.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/vecops.cpp.o.d"
  "/root/repo/src/core/vtk_io.cpp" "src/CMakeFiles/fun3d_core.dir/core/vtk_io.cpp.o" "gcc" "src/CMakeFiles/fun3d_core.dir/core/vtk_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fun3d_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fun3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
