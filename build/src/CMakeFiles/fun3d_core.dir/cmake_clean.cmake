file(REMOVE_RECURSE
  "CMakeFiles/fun3d_core.dir/core/bicgstab.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/bicgstab.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/boundary.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/boundary.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/fields.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/fields.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/flux_kernels.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/flux_kernels.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/gmres.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/gmres.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/gradients.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/gradients.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/gradients_lsq.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/gradients_lsq.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/jacobian.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/jacobian.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/limiter.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/limiter.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/newton.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/newton.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/physics.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/physics.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/profile.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/profile.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/solver.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/solver.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/vecops.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/vecops.cpp.o.d"
  "CMakeFiles/fun3d_core.dir/core/vtk_io.cpp.o"
  "CMakeFiles/fun3d_core.dir/core/vtk_io.cpp.o.d"
  "libfun3d_core.a"
  "libfun3d_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fun3d_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
