file(REMOVE_RECURSE
  "libfun3d_core.a"
)
