file(REMOVE_RECURSE
  "CMakeFiles/fun3d_parallel.dir/parallel/edge_partition.cpp.o"
  "CMakeFiles/fun3d_parallel.dir/parallel/edge_partition.cpp.o.d"
  "CMakeFiles/fun3d_parallel.dir/parallel/workshare.cpp.o"
  "CMakeFiles/fun3d_parallel.dir/parallel/workshare.cpp.o.d"
  "libfun3d_parallel.a"
  "libfun3d_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fun3d_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
