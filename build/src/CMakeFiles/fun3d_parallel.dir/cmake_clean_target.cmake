file(REMOVE_RECURSE
  "libfun3d_parallel.a"
)
