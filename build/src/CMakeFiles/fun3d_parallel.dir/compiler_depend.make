# Empty compiler generated dependencies file for fun3d_parallel.
# This may be replaced when dependencies are built.
