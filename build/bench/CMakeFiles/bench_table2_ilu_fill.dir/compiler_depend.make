# Empty compiler generated dependencies file for bench_table2_ilu_fill.
# This may be replaced when dependencies are built.
