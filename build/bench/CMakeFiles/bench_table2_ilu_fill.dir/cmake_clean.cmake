file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ilu_fill.dir/bench_table2_ilu_fill.cpp.o"
  "CMakeFiles/bench_table2_ilu_fill.dir/bench_table2_ilu_fill.cpp.o.d"
  "bench_table2_ilu_fill"
  "bench_table2_ilu_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ilu_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
