# Empty dependencies file for bench_fig10_comm.
# This may be replaced when dependencies are built.
