file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_comm.dir/bench_fig10_comm.cpp.o"
  "CMakeFiles/bench_fig10_comm.dir/bench_fig10_comm.cpp.o.d"
  "bench_fig10_comm"
  "bench_fig10_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
