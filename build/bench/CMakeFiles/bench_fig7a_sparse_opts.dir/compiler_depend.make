# Empty compiler generated dependencies file for bench_fig7a_sparse_opts.
# This may be replaced when dependencies are built.
