file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_sparse_opts.dir/bench_fig7a_sparse_opts.cpp.o"
  "CMakeFiles/bench_fig7a_sparse_opts.dir/bench_fig7a_sparse_opts.cpp.o.d"
  "bench_fig7a_sparse_opts"
  "bench_fig7a_sparse_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_sparse_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
