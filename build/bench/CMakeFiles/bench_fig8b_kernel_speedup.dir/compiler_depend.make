# Empty compiler generated dependencies file for bench_fig8b_kernel_speedup.
# This may be replaced when dependencies are built.
