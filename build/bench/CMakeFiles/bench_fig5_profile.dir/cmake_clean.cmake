file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_profile.dir/bench_fig5_profile.cpp.o"
  "CMakeFiles/bench_fig5_profile.dir/bench_fig5_profile.cpp.o.d"
  "bench_fig5_profile"
  "bench_fig5_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
