# Empty dependencies file for bench_fig8a_app_speedup.
# This may be replaced when dependencies are built.
