# Empty compiler generated dependencies file for bench_fig7b_sparse_bw.
# This may be replaced when dependencies are built.
