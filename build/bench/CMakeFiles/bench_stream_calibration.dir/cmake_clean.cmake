file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_calibration.dir/bench_stream_calibration.cpp.o"
  "CMakeFiles/bench_stream_calibration.dir/bench_stream_calibration.cpp.o.d"
  "bench_stream_calibration"
  "bench_stream_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
