# Empty dependencies file for bench_stream_calibration.
# This may be replaced when dependencies are built.
