file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pipelined.dir/bench_ablation_pipelined.cpp.o"
  "CMakeFiles/bench_ablation_pipelined.dir/bench_ablation_pipelined.cpp.o.d"
  "bench_ablation_pipelined"
  "bench_ablation_pipelined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pipelined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
