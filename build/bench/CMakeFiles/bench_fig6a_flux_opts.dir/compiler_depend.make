# Empty compiler generated dependencies file for bench_fig6a_flux_opts.
# This may be replaced when dependencies are built.
