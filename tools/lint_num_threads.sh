#!/usr/bin/env sh
# Team-contract lint (DESIGN.md §5): every OpenMP parallel region in the
# tree must be opened by the executor layer in src/parallel/ (run_team,
# run_team_workshare, parallel_ranges, parallel_sum). A raw
# `num_threads(...)` anywhere else bypasses shortfall detection and the
# single-code-path bitwise guarantee, so it fails CI.
#
# Usage: tools/lint_num_threads.sh [repo-root]   (default: script's parent)
set -eu

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}

offenders=$(grep -rn "num_threads(" "$root/src" \
  --include='*.cpp' --include='*.hpp' -l |
  grep -v "^$root/src/parallel/" || true)

if [ -n "$offenders" ]; then
  echo "FAIL: raw num_threads( outside src/parallel/ — route these through"
  echo "run_team / run_team_workshare / parallel_ranges (DESIGN.md §5):"
  grep -rn "num_threads(" $offenders
  exit 1
fi

echo "OK: no raw num_threads( sites in src/ outside src/parallel/"
