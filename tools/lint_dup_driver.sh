#!/usr/bin/env sh
# Unified-driver lint (DESIGN.md §8/§10): the pseudo-transient step
# accept/reject policy lives in exactly ONE place — NewtonDriver
# (src/core/newton_driver.cpp). Its telltale is the SER CFL controller:
# any `ser_update(` call site outside the driver means a front-end has
# grown its own copy of the continuation loop again (the FlowSolver /
# HybridSolver duplication this lint exists to prevent), so it fails CI.
# Declarations and the implementation in core/newton.{hpp,cpp} are exempt;
# tests may call ser_update directly to pin the controller's contract.
#
# Usage: tools/lint_dup_driver.sh [repo-root]   (default: script's parent)
set -eu

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}

offenders=$(grep -rn "ser_update(" "$root/src" \
  --include='*.cpp' --include='*.hpp' -l |
  grep -v "^$root/src/core/newton_driver.cpp$" |
  grep -v "^$root/src/core/newton_driver.hpp$" |
  grep -v "^$root/src/core/newton.hpp$" |
  grep -v "^$root/src/core/newton.cpp$" || true)

if [ -n "$offenders" ]; then
  echo "FAIL: ser_update( call sites outside src/core/newton_driver.cpp —"
  echo "the step accept/reject loop must stay unified in NewtonDriver"
  echo "(DESIGN.md §8); drive it through a NewtonBackend instead:"
  grep -rn "ser_update(" $offenders
  exit 1
fi

echo "OK: ser_update( only in the unified NewtonDriver (plus core/newton)"
